#!/usr/bin/env python3
"""The full dense symmetric eigensolver pipeline of the paper (Eqs. 1-3):

    A = Q T Q'        (Householder tridiagonalization)
    T = V L V'        (task-flow D&C tridiagonal eigensolver)
    A = (QV) L (QV)'  (back-transformation)

on a finite-element-style stiffness matrix — the kind of problem the
paper's introduction motivates (automobile/structural computations).

Run:  python examples/dense_symmetric_pipeline.py
"""

import numpy as np

from repro import eigh
from repro.analysis import orthogonality_error


def stiffness_matrix(nx: int = 18, ny: int = 18) -> np.ndarray:
    """Dense 2-D Laplacian stiffness matrix on an nx-by-ny grid (the
    classical FE model problem), densified with a random low-rank
    'loading' perturbation so it is not tridiagonal to begin with."""
    n = nx * ny
    A = np.zeros((n, n))
    for j in range(ny):
        for i in range(nx):
            k = j * nx + i
            A[k, k] = 4.0
            if i + 1 < nx:
                A[k, k + 1] = A[k + 1, k] = -1.0
            if j + 1 < ny:
                A[k, k + nx] = A[k + nx, k] = -1.0
    rng = np.random.default_rng(0)
    B = rng.normal(size=(n, 3)) * 0.05
    A += B @ B.T
    return A


def main() -> None:
    A = stiffness_matrix()
    n = A.shape[0]
    print(f"dense symmetric problem, n = {n}")

    lam, V = eigh(A)

    resid = np.max(np.abs(A @ V - V * lam[None, :]))
    print(f"lowest modes        : {np.array2string(lam[:5], precision=5)}")
    print(f"highest mode        : {lam[-1]:.5f}")
    print(f"back-transformed orthogonality: {orthogonality_error(V):.2e}")
    print(f"residual |AV - VL|  : {resid:.2e}")

    ref = np.linalg.eigvalsh(A)
    print(f"vs numpy eigvalsh   : {np.max(np.abs(lam - ref)):.2e}")


if __name__ == "__main__":
    main()
