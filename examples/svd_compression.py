#!/usr/bin/env python3
"""D&C SVD extension: low-rank compression of a sampled 2-D field.

The paper's conclusion singles out the SVD as the natural next target
for the task-flow D&C ("the SVD follows the same scheme ... by reducing
the initial matrix to bidiagonal form and using a Divide and Conquer
algorithm as bidiagonal solver").  This example runs that pipeline —
Householder bidiagonalization, Golub-Kahan TGK tridiagonal, task-flow
D&C, back-transformation — to compress a smooth field plus noise.

Run:  python examples/svd_compression.py
"""

import numpy as np

from repro import svd


def sampled_field(m: int = 120, n: int = 90) -> np.ndarray:
    """A smooth (low-rank) field with additive noise."""
    x = np.linspace(0, 1, m)[:, None]
    y = np.linspace(0, 1, n)[None, :]
    field = (np.sin(3 * np.pi * x) @ np.cos(2 * np.pi * y)
             + 0.5 * (x ** 2) @ (1 - y)
             + 0.2 * np.exp(-((x - 0.3) ** 2)) @ np.exp(-((y - 0.7) ** 2)))
    rng = np.random.default_rng(0)
    return field + 0.01 * rng.normal(size=(m, n))


def main() -> None:
    A = sampled_field()
    m, n = A.shape
    U, s, Vt = svd(A)
    print(f"field {m}x{n}; singular spectrum head: "
          f"{np.array2string(s[:6], precision=3)}")

    energy = np.cumsum(s ** 2) / np.sum(s ** 2)
    for k in (1, 3, 5, 10):
        Ak = (U[:, :k] * s[:k][None, :]) @ Vt[:k, :]
        err = np.linalg.norm(A - Ak) / np.linalg.norm(A)
        print(f"rank {k:>3d}: relative error {err:.4f}  "
              f"(energy captured {energy[k - 1]:.1%})")

    # Verify against the Eckart-Young optimum computed by NumPy.
    s_ref = np.linalg.svd(A, compute_uv=False)
    print(f"max |sigma - numpy|: {np.max(np.abs(s - s_ref)):.2e}")


if __name__ == "__main__":
    main()
